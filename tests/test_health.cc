/**
 * @file
 * Tests for the self-healing control plane: the lease-based failure
 * detector as a standalone state machine (property-style, clock-driven,
 * no I/O), and the full HealthPlane integrated over the simulated
 * fabric — detection latency, epoch fencing of zombie MNs, automatic
 * re-replication, CN-death lock GC, and cross-engine determinism.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <utility>
#include <vector>

#include "clib/queue.hh"
#include "clib/replication.hh"
#include "cluster/cluster.hh"
#include "cluster/health.hh"
#include "sim/rng.hh"

namespace clio {
namespace {

constexpr Tick kSuspect = 60 * kMicrosecond;
constexpr Tick kDead = 150 * kMicrosecond;

// ---------------------------------------------------------------------
// FailureDetector: pure state-machine properties
// ---------------------------------------------------------------------

TEST(FailureDetector, NoFalsePositivesWithoutLoss)
{
    // A node that beacons strictly inside its lease never transitions,
    // no matter how often the detector sweeps.
    FailureDetector det(kSuspect, kDead);
    det.track(7, 0);
    Tick now = 0;
    for (int i = 0; i < 200; i++) {
        now += 20 * kMicrosecond; // well inside suspect_after
        EXPECT_TRUE(det.sweep(now - 1).empty());
        EXPECT_EQ(det.onBeacon(7, 0, now), BeaconOutcome::kNone);
        EXPECT_TRUE(det.sweep(now).empty());
        EXPECT_EQ(det.stateOf(7), NodeHealth::kAlive);
    }
    EXPECT_EQ(det.nextDeadline(), now + kSuspect);
}

TEST(FailureDetector, SuspectedThenAliveOnLateHeartbeat)
{
    FailureDetector det(kSuspect, kDead);
    det.track(3, 0);

    auto t = det.sweep(kSuspect);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].node, 3u);
    EXPECT_EQ(t[0].from, NodeHealth::kAlive);
    EXPECT_EQ(t[0].to, NodeHealth::kSuspected);

    // The beacon shows up late but before the lease fully expires:
    // suspicion is withdrawn, nothing was declared dead.
    EXPECT_EQ(det.onBeacon(3, 0, kDead - 1), BeaconOutcome::kRecovered);
    EXPECT_EQ(det.stateOf(3), NodeHealth::kAlive);
    EXPECT_TRUE(det.sweep(kDead - 1).empty());
    // And the lease is re-anchored at the beacon, not the old anchor.
    EXPECT_EQ(det.nextDeadline(), (kDead - 1) + kSuspect);
}

TEST(FailureDetector, DeadExactlyAtLeaseExpiryTick)
{
    FailureDetector det(kSuspect, kDead);
    det.track(9, 0);

    // Deadlines are inclusive: nothing at expiry-1, the transition at
    // exactly the expiry tick.
    EXPECT_EQ(det.nextDeadline(), kSuspect);
    EXPECT_TRUE(det.sweep(kSuspect - 1).empty());
    auto t = det.sweep(kSuspect);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].to, NodeHealth::kSuspected);

    EXPECT_EQ(det.nextDeadline(), kDead);
    EXPECT_TRUE(det.sweep(kDead - 1).empty());
    EXPECT_EQ(det.stateOf(9), NodeHealth::kSuspected);
    t = det.sweep(kDead);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].from, NodeHealth::kSuspected);
    EXPECT_EQ(t[0].to, NodeHealth::kDead);
    // A dead node has no pending deadline; only a beacon revives it.
    EXPECT_EQ(det.nextDeadline(), FailureDetector::kNoDeadline);

    EXPECT_EQ(det.onBeacon(9, 0, kDead + 10), BeaconOutcome::kRejoined);
    EXPECT_EQ(det.stateOf(9), NodeHealth::kAlive);
}

TEST(FailureDetector, AliveToDeadInOneSweep)
{
    // Sweeps can lag arbitrarily (the controller only wakes at
    // deadlines); one late sweep applies BOTH expiries in order.
    FailureDetector det(kSuspect, kDead);
    det.track(1, 0);
    auto t = det.sweep(kDead + 5);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t[0].to, NodeHealth::kSuspected);
    EXPECT_EQ(t[1].to, NodeHealth::kDead);
}

TEST(FailureDetector, IncarnationJumpIsSilentRestart)
{
    FailureDetector det(kSuspect, kDead);
    det.track(4, 0);
    EXPECT_EQ(det.onBeacon(4, 0, 10), BeaconOutcome::kNone);
    // Crash + reboot inside one lease window: the lease never expired,
    // but the incarnation count jumped — volatile state is gone.
    EXPECT_EQ(det.onBeacon(4, 1, 30), BeaconOutcome::kRestarted);
    EXPECT_EQ(det.stateOf(4), NodeHealth::kAlive);
    // Same incarnation again is routine.
    EXPECT_EQ(det.onBeacon(4, 1, 50), BeaconOutcome::kNone);
}

TEST(FailureDetector, RandomScheduleMatchesOracle)
{
    // Property: after any beacon/sweep interleaving, the state equals
    // what the trivial oracle computes from the last-beacon gap. Runs
    // under pinned seeds so failures replay.
    for (const std::uint64_t seed : {11ull, 23ull, 57ull}) {
        Rng rng(seed);
        FailureDetector det(kSuspect, kDead);
        det.track(1, 0);
        Tick now = 0;
        Tick last_beacon = 0;
        for (int i = 0; i < 500; i++) {
            now += rng.uniformRange(1 * kMicrosecond,
                                    40 * kMicrosecond);
            if (rng.chance(0.7)) {
                det.onBeacon(1, 0, now);
                last_beacon = now;
            }
            det.sweep(now);
            const Tick gap = now - last_beacon;
            const NodeHealth want =
                gap >= kDead      ? NodeHealth::kDead
                : gap >= kSuspect ? NodeHealth::kSuspected
                                  : NodeHealth::kAlive;
            ASSERT_EQ(det.stateOf(1), want)
                << "seed " << seed << " step " << i << " gap " << gap;
        }
    }
}

// ---------------------------------------------------------------------
// HealthPlane: integrated over the simulated fabric
// ---------------------------------------------------------------------

ModelConfig healthConfig()
{
    auto cfg = ModelConfig::prototype();
    cfg.health.enabled = true;
    return cfg;
}

TEST(HealthPlane, DetectsMnCrashWithinLeaseBounds)
{
    auto cfg = healthConfig();
    Cluster cluster(cfg, 1, 2);
    HealthPlane *hp = cluster.health();
    ASSERT_NE(hp, nullptr);
    EventQueue &eq = cluster.eventQueue();

    // A healthy cluster's beacons flow through the real fabric with no
    // loss: zero suspicions, epoch parked at its boot value.
    eq.runUntilTime(300 * kMicrosecond);
    const std::uint64_t epoch0 = hp->epoch();
    EXPECT_EQ(epoch0, 1u);
    EXPECT_EQ(hp->stats().suspects, 0u);
    EXPECT_EQ(hp->stats().deaths, 0u);
    EXPECT_GT(hp->stats().beacons, 0u);

    const Tick crash_at = eq.now();
    const NodeId dead_node = cluster.mn(0).nodeId();
    cluster.crashMn(0);
    eq.runUntilTime(crash_at + cfg.health.dead_after +
                    4 * cfg.health.heartbeat_period);

    EXPECT_EQ(hp->detector().stateOf(dead_node), NodeHealth::kDead);
    EXPECT_EQ(hp->epoch(), epoch0 + 1);
    EXPECT_EQ(hp->stats().mn_deaths, 1u);

    // Detection latency is bounded by the lease: at least dead_after
    // minus one beacon interval (the lease anchors at the last beacon
    // BEFORE the crash), at most dead_after plus a couple of intervals.
    Tick death_tick = 0;
    for (const HealthEvent &e : hp->events())
        if (e.kind == HealthEvent::Kind::kDead && e.node == dead_node)
            death_tick = e.at;
    ASSERT_GT(death_tick, crash_at);
    EXPECT_GE(death_tick - crash_at,
              cfg.health.dead_after - 2 * cfg.health.heartbeat_period);
    EXPECT_LE(death_tick - crash_at,
              cfg.health.dead_after + 2 * cfg.health.heartbeat_period);
}

TEST(HealthPlane, ZombieMnIsFencedUntilCnsRefreshTheirEpoch)
{
    auto cfg = healthConfig();
    Cluster cluster(cfg, 1, 2);
    HealthPlane *hp = cluster.health();
    ClioClient &client = cluster.createClient(0);
    EventQueue &eq = cluster.eventQueue();

    // Kill MN 0, let the lease expire (epoch 2), then bring the board
    // back empty. Its resumed beacons carry a bumped incarnation, so
    // the controller records a rejoin (epoch 3) and fences the zombie
    // at the new epoch.
    cluster.crashMn(0);
    eq.runUntilTime(eq.now() + cfg.health.dead_after +
                    4 * cfg.health.heartbeat_period);
    ASSERT_EQ(hp->detector().stateOf(cluster.mn(0).nodeId()),
              NodeHealth::kDead);
    cluster.restartMn(0);
    eq.runUntilTime(eq.now() + 4 * cfg.health.heartbeat_period);
    ASSERT_EQ(hp->detector().stateOf(cluster.mn(0).nodeId()),
              NodeHealth::kAlive);
    EXPECT_EQ(hp->stats().rejoins, 1u);
    EXPECT_EQ(hp->epoch(), 3u);
    EXPECT_EQ(cluster.mn(0).epochFence(), hp->epoch());

    // The CN last pulled its epoch at boot — it is stale now.
    ASSERT_LT(cluster.cn(0).epoch(), hp->epoch());

    // First request aimed at the rejoined MN bounces on the fence; the
    // CN refreshes its epoch from the controller and retries. The
    // client sees one clean success, never the zombie's empty state.
    SubmissionBatch batch(client);
    const std::size_t slot =
        batch.alloc(1 * MiB, kPermReadWrite, false,
                    cluster.mn(0).nodeId());
    const BatchOutcome out = batch.submitAndWait();
    EXPECT_TRUE(out.completions[slot].ok());
    EXPECT_GE(cluster.mn(0).stats().epoch_fenced, 1u);
    EXPECT_GE(cluster.cn(0).stats().epoch_refreshes, 1u);
    EXPECT_EQ(cluster.cn(0).epoch(), hp->epoch());
}

TEST(HealthPlane, AutoResyncRestoresRedundancyWithoutClientHeal)
{
    auto cfg = healthConfig();
    Cluster cluster(cfg, 1, 3);
    HealthPlane *hp = cluster.health();
    ClioClient &client = cluster.createClient(0);
    EventQueue &eq = cluster.eventQueue();

    ReplicatedRegion region(client, 1 * MiB, cluster.mn(0).nodeId(),
                            cluster.mn(1).nodeId());
    ASSERT_TRUE(region.ok());
    EXPECT_EQ(hp->regionCount(), 1u);
    for (std::uint64_t off = 0; off < 1 * MiB; off += 128 * KiB) {
        std::uint64_t v = 0xAB5E0000 + off;
        ASSERT_EQ(region.write(off, &v, 8), Status::kOk);
    }

    // Kill the primary and just let the simulation run: the controller
    // detects the death, marks the replica dead, picks MN 2 and streams
    // the survivor's copy over — zero heal() calls from the client.
    cluster.crashMn(0);
    eq.runUntilTime(eq.now() + 10 * kMillisecond);

    EXPECT_TRUE(region.fullyRedundant());
    EXPECT_EQ(region.resyncs(), 1u);
    EXPECT_EQ(region.primaryMn(), cluster.mn(2).nodeId());
    EXPECT_EQ(hp->stats().resyncs_started, 1u);
    EXPECT_EQ(hp->stats().resyncs_completed, 1u);
    EXPECT_EQ(hp->stats().resyncs_failed, 0u);
    EXPECT_EQ(hp->activeResyncs(), 0u);

    // The copy is real: kill the old backup too, so every read must be
    // served by the freshly resynced replica on MN 2.
    cluster.crashMn(1);
    std::uint64_t marker = 1;
    ASSERT_EQ(region.write(0, &marker, 8), Status::kOk); // mark dead
    for (std::uint64_t off = 128 * KiB; off < 1 * MiB;
         off += 128 * KiB) {
        std::uint64_t got = 0;
        ASSERT_EQ(region.read(off, &got, 8), Status::kOk) << off;
        EXPECT_EQ(got, 0xAB5E0000 + off);
    }
}

TEST(HealthPlane, ResyncDefersWhenNoCandidateExists)
{
    // Two MNs: when one dies there is nowhere to re-replicate to. The
    // controller parks the repair on the backoff path instead of
    // spinning or crashing, and the region stays readable (degraded).
    auto cfg = healthConfig();
    Cluster cluster(cfg, 1, 2);
    HealthPlane *hp = cluster.health();
    ClioClient &client = cluster.createClient(0);
    EventQueue &eq = cluster.eventQueue();

    ReplicatedRegion region(client, 256 * KiB, cluster.mn(0).nodeId(),
                            cluster.mn(1).nodeId());
    ASSERT_TRUE(region.ok());
    std::uint64_t v = 0xBEEF;
    ASSERT_EQ(region.write(0, &v, 8), Status::kOk);

    cluster.crashMn(0);
    eq.runUntilTime(eq.now() + 2 * kMillisecond);

    EXPECT_FALSE(region.fullyRedundant());
    EXPECT_EQ(hp->stats().resyncs_started, 0u);
    EXPECT_GE(hp->stats().resyncs_deferred, 1u);
    std::uint64_t got = 0;
    ASSERT_EQ(region.read(0, &got, 8), Status::kOk);
    EXPECT_EQ(got, 0xBEEFu);
}

TEST(HealthPlane, CnDeathReleasesOrphanedLocks)
{
    auto cfg = healthConfig();
    Cluster cluster(cfg, 2, 1);
    HealthPlane *hp = cluster.health();
    ClioClient &alice = cluster.createClient(0);
    ClioClient &bob = cluster.createSharedClient(1, alice);
    EventQueue &eq = cluster.eventQueue();

    const VirtAddr lock = alice.ralloc(4 * KiB).value_or(0);
    ASSERT_NE(lock, 0u);
    ASSERT_TRUE(bob.rlock(lock, 4));
    EXPECT_FALSE(alice.rlock(lock, 2)); // held by bob

    // Bob's CN dies holding the lock. Once the lease expires the
    // controller GCs the orphan: the lock word goes back to 0.
    cluster.crashCn(1);
    eq.runUntilTime(eq.now() + cfg.health.dead_after +
                    6 * cfg.health.heartbeat_period);

    EXPECT_EQ(hp->stats().cn_deaths, 1u);
    EXPECT_GE(hp->stats().locks_reclaimed, 1u);
    EXPECT_GE(cluster.mn(0).stats().locks_reclaimed, 1u);
    // The RAS is shared with a surviving CN, so the process itself
    // must NOT be torn down — only the dead CN's locks.
    EXPECT_EQ(hp->stats().procs_destroyed, 0u);

    EXPECT_TRUE(alice.rlock(lock, 4));
    alice.runlock(lock);
    std::uint64_t got = 0;
    EXPECT_EQ(alice.rread(lock, &got, 8), Status::kOk);
}

// ---------------------------------------------------------------------
// Determinism: the health plane replays byte-identically across runs
// and across both event-queue engines.
// ---------------------------------------------------------------------

struct HealthRunSig
{
    std::uint64_t epoch = 0;
    std::uint64_t beacons = 0;
    std::uint64_t deaths = 0;
    std::uint64_t rejoins = 0;
    std::uint64_t resyncs_completed = 0;
    std::uint64_t region_resyncs = 0;
    bool fully_redundant = false;
    /** (kind, tick, node, region) of every plane event, in order. */
    std::vector<std::tuple<std::uint8_t, Tick, NodeId, std::uint64_t>>
        events;

    bool operator==(const HealthRunSig &o) const
    {
        return epoch == o.epoch && beacons == o.beacons &&
               deaths == o.deaths && rejoins == o.rejoins &&
               resyncs_completed == o.resyncs_completed &&
               region_resyncs == o.region_resyncs &&
               fully_redundant == o.fully_redundant &&
               events == o.events;
    }
};

HealthRunSig runHealthScenario(EventQueueImpl impl)
{
    auto cfg = healthConfig();
    cfg.event_queue_impl = impl;
    Cluster cluster(cfg, 1, 3);
    HealthPlane *hp = cluster.health();
    ClioClient &client = cluster.createClient(0);
    EventQueue &eq = cluster.eventQueue();

    ReplicatedRegion region(client, 512 * KiB, cluster.mn(0).nodeId(),
                            cluster.mn(1).nodeId());
    for (std::uint64_t off = 0; off < 512 * KiB; off += 64 * KiB) {
        std::uint64_t v = off;
        region.write(off, &v, 8);
    }
    cluster.crashMn(0);
    eq.runUntilTime(eq.now() + 1 * kMillisecond);
    cluster.restartMn(0);
    eq.runUntilTime(8 * kMillisecond);

    HealthRunSig sig;
    sig.epoch = hp->epoch();
    sig.beacons = hp->stats().beacons;
    sig.deaths = hp->stats().deaths;
    sig.rejoins = hp->stats().rejoins;
    sig.resyncs_completed = hp->stats().resyncs_completed;
    sig.region_resyncs = region.resyncs();
    sig.fully_redundant = region.fullyRedundant();
    for (const HealthEvent &e : hp->events())
        sig.events.emplace_back(static_cast<std::uint8_t>(e.kind),
                                e.at, e.node, e.region_id);
    return sig;
}

TEST(HealthPlane, ByteIdenticalAcrossRunsAndEngines)
{
    const HealthRunSig wheel1 =
        runHealthScenario(EventQueueImpl::kTimingWheel);
    const HealthRunSig wheel2 =
        runHealthScenario(EventQueueImpl::kTimingWheel);
    const HealthRunSig heap =
        runHealthScenario(EventQueueImpl::kBinaryHeap);

    ASSERT_FALSE(wheel1.events.empty());
    EXPECT_GE(wheel1.deaths, 1u);
    EXPECT_GE(wheel1.rejoins, 1u);
    EXPECT_TRUE(wheel1 == wheel2);
    EXPECT_TRUE(wheel1 == heap);
}

} // namespace
} // namespace clio
