/**
 * @file
 * Unit + property tests for the overflow-free hash page table and TLB.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "pagetable/hash_page_table.hh"
#include "pagetable/tlb.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace clio {
namespace {

HashPageTable
makeTable(std::uint64_t phys = 2 * GiB)
{
    // Defaults from the paper: 4 MB pages, 8-slot buckets, 2x slots.
    return HashPageTable(phys, 4 * MiB, 8, 2.0);
}

Pte
makePte(ProcId pid, std::uint64_t vpn, PhysAddr frame, std::uint8_t perm,
        bool valid, bool present)
{
    Pte pte;
    pte.pid = pid;
    pte.vpn = vpn;
    pte.frame = frame;
    pte.perm = perm;
    pte.valid = valid;
    pte.present = present;
    return pte;
}

TEST(JenkinsHash, DeterministicAndSpread)
{
    EXPECT_EQ(jenkinsHash(1, 2), jenkinsHash(1, 2));
    EXPECT_NE(jenkinsHash(1, 2), jenkinsHash(2, 1));
    // Sequential vpns should spread across values.
    std::set<std::uint64_t> values;
    for (std::uint64_t v = 0; v < 1000; v++)
        values.insert(jenkinsHash(7, v) % 128);
    EXPECT_GT(values.size(), 100u);
}

TEST(HashPageTable, GeometryMatchesPaper)
{
    auto pt = makeTable();
    // 2 GB / 4 MB = 512 frames; 2x overprovision = 1024 slots.
    EXPECT_EQ(pt.totalSlots(), 1024u);
    EXPECT_EQ(pt.bucketSlots(), 8u);
    // §4.2: table consumes ~0.4% of physical memory (here: 16 B PTEs).
    EXPECT_LT(static_cast<double>(pt.tableBytes()),
              0.004 * 2 * GiB);
}

TEST(HashPageTable, InsertLookupRemove)
{
    auto pt = makeTable();
    pt.insert(3, 100, kPermReadWrite);
    const Pte *pte = pt.lookup(3, 100);
    ASSERT_NE(pte, nullptr);
    EXPECT_EQ(pte->pid, 3u);
    EXPECT_EQ(pte->vpn, 100u);
    EXPECT_FALSE(pte->present);
    EXPECT_EQ(pt.liveEntries(), 1u);

    EXPECT_EQ(pt.lookup(3, 101), nullptr);
    EXPECT_EQ(pt.lookup(4, 100), nullptr);

    Pte removed = pt.remove(3, 100);
    EXPECT_TRUE(removed.valid);
    EXPECT_EQ(pt.lookup(3, 100), nullptr);
    EXPECT_EQ(pt.liveEntries(), 0u);
}

TEST(HashPageTable, BindFrameMakesPresent)
{
    auto pt = makeTable();
    pt.insert(1, 5, kPermRead);
    pt.bindFrame(1, 5, 8 * MiB);
    const Pte *pte = pt.lookup(1, 5);
    ASSERT_NE(pte, nullptr);
    EXPECT_TRUE(pte->present);
    EXPECT_EQ(pte->frame, 8 * MiB);
}

TEST(HashPageTable, MultiProcessIsolation)
{
    auto pt = makeTable();
    // Same vpn under different pids are distinct entries.
    for (ProcId p = 1; p <= 5; p++)
        pt.insert(p, 42, kPermRead);
    EXPECT_EQ(pt.liveEntries(), 5u);
    for (ProcId p = 1; p <= 5; p++) {
        const Pte *pte = pt.lookup(p, 42);
        ASSERT_NE(pte, nullptr);
        EXPECT_EQ(pte->pid, p);
    }
}

TEST(HashPageTable, CanInsertCountsBatchDemand)
{
    auto pt = makeTable(64 * MiB); // 16 frames -> 32 slots, 4 buckets
    // Find 9 vpns that all land in the same bucket: demand 9 > K=8.
    std::vector<std::uint64_t> same_bucket;
    const std::uint64_t target = pt.bucketOf(1, 0);
    for (std::uint64_t v = 0; same_bucket.size() < 9; v++) {
        if (pt.bucketOf(1, v) == target)
            same_bucket.push_back(v);
    }
    EXPECT_FALSE(pt.canInsert(1, same_bucket));
    same_bucket.pop_back();
    EXPECT_TRUE(pt.canInsert(1, same_bucket));
}

TEST(HashPageTable, CanInsertReflectsExistingFill)
{
    auto pt = makeTable(64 * MiB);
    const std::uint64_t target = pt.bucketOf(9, 0);
    std::vector<std::uint64_t> bucket_vpns;
    for (std::uint64_t v = 0; bucket_vpns.size() < 9; v++) {
        if (pt.bucketOf(9, v) == target)
            bucket_vpns.push_back(v);
    }
    // Fill 8 slots; the 9th single insert must be rejected by the check.
    for (int i = 0; i < 8; i++)
        pt.insert(9, bucket_vpns[static_cast<std::size_t>(i)],
                  kPermRead);
    std::vector<std::uint64_t> one{bucket_vpns[8]};
    EXPECT_FALSE(pt.canInsert(9, one));
    EXPECT_EQ(pt.freeSlotsInBucket(9, bucket_vpns[8]), 0u);
}

TEST(HashPageTable, PropertyNoOverflowWhenGuardedByCanInsert)
{
    // Property: any insert admitted by canInsert() never overflows,
    // across random pids/vpns until the table is near-full.
    auto pt = makeTable(256 * MiB); // 128 slots
    Rng rng(21);
    std::set<std::pair<ProcId, std::uint64_t>> live;
    std::uint64_t inserted = 0, rejected = 0;
    while (inserted + rejected < 5000 &&
           pt.liveEntries() < pt.totalSlots()) {
        ProcId pid = static_cast<ProcId>(rng.uniformRange(1, 8));
        std::uint64_t vpn = rng.uniformInt(1 << 16);
        if (live.count({pid, vpn}))
            continue;
        std::vector<std::uint64_t> batch{vpn};
        if (pt.canInsert(pid, batch)) {
            pt.insert(pid, vpn, kPermReadWrite); // must not panic
            live.insert({pid, vpn});
            inserted++;
        } else {
            rejected++;
        }
    }
    EXPECT_GT(inserted, 0u);
    EXPECT_LE(pt.maxBucketFill(), pt.bucketSlots());
}

TEST(Tlb, HitAfterInsert)
{
    Tlb tlb(4);
    Pte pte = makePte(1, 10, 4 * MiB, kPermRead, true, true);
    tlb.insert(pte);
    const Pte *hit = tlb.lookup(1, 10);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->frame, 4 * MiB);
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 0u);
}

TEST(Tlb, MissCounted)
{
    Tlb tlb(4);
    EXPECT_EQ(tlb.lookup(1, 10), nullptr);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, LruEviction)
{
    Tlb tlb(2);
    tlb.insert(makePte(1, 1, 0, kPermRead, true, true));
    tlb.insert(makePte(1, 2, 0, kPermRead, true, true));
    // Touch vpn 1 so vpn 2 becomes LRU.
    EXPECT_NE(tlb.lookup(1, 1), nullptr);
    tlb.insert(makePte(1, 3, 0, kPermRead, true, true));
    EXPECT_NE(tlb.lookup(1, 1), nullptr);
    EXPECT_EQ(tlb.lookup(1, 2), nullptr); // evicted
    EXPECT_NE(tlb.lookup(1, 3), nullptr);
}

TEST(Tlb, UpdateInPlace)
{
    Tlb tlb(4);
    tlb.insert(makePte(1, 1, 0, kPermRead, true, false));
    Pte updated = makePte(1, 1, 12 * MiB, kPermRead, true, true);
    tlb.update(updated);
    const Pte *pte = tlb.lookup(1, 1);
    ASSERT_NE(pte, nullptr);
    EXPECT_TRUE(pte->present);
    EXPECT_EQ(pte->frame, 12 * MiB);
    // update() of an uncached entry is a no-op, not an insert.
    tlb.update(makePte(2, 9, 0, kPermRead, true, true));
    std::uint64_t misses_before = tlb.misses();
    EXPECT_EQ(tlb.lookup(2, 9), nullptr);
    EXPECT_EQ(tlb.misses(), misses_before + 1);
}

TEST(Tlb, InvalidateSingleAndProcess)
{
    Tlb tlb(8);
    for (std::uint64_t v = 0; v < 3; v++) {
        tlb.insert(makePte(1, v, 0, kPermRead, true, true));
        tlb.insert(makePte(2, v, 0, kPermRead, true, true));
    }
    tlb.invalidate(1, 0);
    EXPECT_EQ(tlb.lookup(1, 0), nullptr);
    EXPECT_NE(tlb.lookup(2, 0), nullptr);
    tlb.invalidateProcess(2);
    for (std::uint64_t v = 0; v < 3; v++)
        EXPECT_EQ(tlb.lookup(2, v), nullptr);
    EXPECT_NE(tlb.lookup(1, 1), nullptr);
    EXPECT_EQ(tlb.size(), 2u);
}

TEST(Tlb, ReinsertRefreshesLru)
{
    Tlb tlb(2);
    tlb.insert(makePte(1, 1, 0, kPermRead, true, true));
    tlb.insert(makePte(1, 2, 0, kPermRead, true, true));
    tlb.insert(makePte(1, 1, 4 * MiB, kPermRead, true, true)); // refresh
    tlb.insert(makePte(1, 3, 0, kPermRead, true, true));
    EXPECT_NE(tlb.lookup(1, 1), nullptr); // survived, vpn2 evicted
    EXPECT_EQ(tlb.lookup(1, 2), nullptr);
}

} // namespace
} // namespace clio
