/**
 * @file
 * Unit + property tests for the overflow-free VA allocator (§4.2),
 * including the Fig. 13 retry behaviour near full utilization.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "pagetable/hash_page_table.hh"
#include "sim/rng.hh"
#include "valloc/va_allocator.hh"

namespace clio {
namespace {

constexpr std::uint64_t kPage = 4 * MiB;

struct Fixture
{
    HashPageTable pt;
    VaAllocator va;

    explicit Fixture(std::uint64_t phys = 2 * GiB)
        : pt(phys, kPage, 8, 2.0), va(kPage, 1ull << 40)
    {
    }

    // Allocate and actually insert the PTEs (as the slow path would).
    std::optional<VaAllocResult>
    alloc(ProcId pid, std::uint64_t size, std::uint8_t perm = kPermReadWrite)
    {
        auto res = va.allocate(pid, size, perm, pt);
        if (res) {
            for (auto vpn : res->vpns)
                pt.insert(pid, vpn, perm);
        }
        return res;
    }

    void
    freeAll(ProcId pid, VirtAddr addr)
    {
        auto res = va.free(pid, addr);
        ASSERT_TRUE(res.has_value());
        for (auto vpn : res->vpns)
            pt.remove(pid, vpn);
    }
};

TEST(VaAllocator, BasicAllocation)
{
    Fixture f;
    auto res = f.alloc(1, 10 * MiB);
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(res->vpns.size(), 3u); // 10 MB rounds to 3 x 4 MB pages
    EXPECT_EQ(res->addr % kPage, 0u);
    EXPECT_GE(res->addr, kPage); // page 0 reserved
    EXPECT_EQ(f.va.allocatedBytes(1), 12 * MiB);
}

TEST(VaAllocator, DistinctRangesPerProcess)
{
    Fixture f;
    auto a = f.alloc(1, kPage);
    auto b = f.alloc(1, kPage);
    ASSERT_TRUE(a && b);
    EXPECT_NE(a->addr, b->addr);
    // Different processes may reuse the same VA (separate RASs).
    auto c = f.alloc(2, kPage);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->addr, a->addr);
}

TEST(VaAllocator, FreeAndReuse)
{
    Fixture f;
    auto a = f.alloc(1, 2 * kPage);
    ASSERT_TRUE(a.has_value());
    f.freeAll(1, a->addr);
    EXPECT_EQ(f.va.allocatedBytes(1), 0u);
    EXPECT_EQ(f.pt.liveEntries(), 0u);
    // Freeing twice fails gracefully.
    EXPECT_FALSE(f.va.free(1, a->addr).has_value());
    // Freeing a non-start address fails gracefully.
    auto b = f.alloc(1, 2 * kPage);
    ASSERT_TRUE(b.has_value());
    EXPECT_FALSE(f.va.free(1, b->addr + kPage).has_value());
}

TEST(VaAllocator, RegionOfFindsContainingRegion)
{
    Fixture f;
    auto a = f.alloc(1, 3 * kPage, kPermRead);
    ASSERT_TRUE(a.has_value());
    const VaRegion *region = f.va.regionOf(1, a->addr + kPage + 17);
    ASSERT_NE(region, nullptr);
    EXPECT_EQ(region->start, a->addr);
    EXPECT_EQ(region->perm, kPermRead);
    EXPECT_EQ(f.va.regionOf(1, a->addr + 3 * kPage), nullptr);
    EXPECT_EQ(f.va.regionOf(2, a->addr), nullptr);
}

TEST(VaAllocator, NoRetriesWhenNearlyEmpty)
{
    // §7.1: "no conflicts when memory is below half utilized".
    Fixture f;
    std::uint32_t total_retries = 0;
    // Fill to ~45% of the 512 physical pages.
    for (int i = 0; i < 230; i++) {
        auto res = f.alloc(static_cast<ProcId>(1 + i % 4), kPage);
        ASSERT_TRUE(res.has_value());
        total_retries += res->retries;
    }
    EXPECT_EQ(total_retries, 0u);
}

TEST(VaAllocator, RetriesRiseNearFullButAllocationSucceeds)
{
    Fixture f;
    // Fill to ~95% with single pages.
    std::uint32_t late_retries = 0;
    for (int i = 0; i < 486; i++) {
        auto res = f.alloc(1, kPage);
        ASSERT_TRUE(res.has_value()) << "allocation " << i;
        if (i >= 460)
            late_retries += res->retries;
    }
    // Retries near full are expected but bounded (paper: up to ~60).
    EXPECT_LT(late_retries, 486u * 100);
}

TEST(VaAllocator, OverflowFreeInvariantHolds)
{
    // Property: after any admitted allocation, no bucket exceeds K.
    Fixture f;
    Rng rng(5);
    for (int i = 0; i < 300; i++) {
        const std::uint64_t pages = rng.uniformRange(1, 4);
        auto res = f.alloc(static_cast<ProcId>(1 + rng.uniformInt(6)),
                           pages * kPage);
        if (!res)
            break;
        EXPECT_LE(f.pt.maxBucketFill(), f.pt.bucketSlots());
    }
}

TEST(VaAllocator, ChurnPropertyNoLeaksNoOverlap)
{
    Fixture f;
    Rng rng(11);
    struct Live
    {
        VirtAddr addr;
        std::uint64_t pages;
    };
    std::vector<Live> live;
    for (int step = 0; step < 400; step++) {
        if (live.size() > 40 || (rng.chance(0.4) && !live.empty())) {
            const std::size_t idx = rng.uniformInt(live.size());
            f.freeAll(1, live[idx].addr);
            live.erase(live.begin() + static_cast<long>(idx));
        } else {
            const std::uint64_t pages = rng.uniformRange(1, 8);
            auto res = f.alloc(1, pages * kPage);
            if (res)
                live.push_back({res->addr, pages});
        }
        // No two live ranges overlap.
        std::set<std::uint64_t> claimed;
        for (const auto &l : live) {
            for (std::uint64_t p = 0; p < l.pages; p++) {
                EXPECT_TRUE(
                    claimed.insert(l.addr / kPage + p).second);
            }
        }
    }
    // PTE count matches live pages exactly (no leaks).
    std::uint64_t expected = 0;
    for (const auto &l : live)
        expected += l.pages;
    EXPECT_EQ(f.pt.liveEntries(), expected);
}

TEST(VaAllocator, FixedAllocationHonoredWhenPossible)
{
    Fixture f;
    const VirtAddr want = 100 * kPage;
    auto res = f.va.allocateFixed(1, want, kPage, kPermReadWrite, f.pt);
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(res->addr, want);
    for (auto vpn : res->vpns)
        f.pt.insert(1, vpn, kPermReadWrite);
    // Second fixed allocation at the same address falls back.
    auto res2 = f.va.allocateFixed(1, want, kPage, kPermReadWrite, f.pt);
    ASSERT_TRUE(res2.has_value());
    EXPECT_NE(res2->addr, want);
    // With fallback disabled it fails instead.
    auto res3 =
        f.va.allocateFixed(1, want, kPage, kPermReadWrite, f.pt, false);
    EXPECT_FALSE(res3.has_value());
}

TEST(VaAllocator, ExhaustionReturnsNullopt)
{
    // Tiny table: 16 MiB phys -> 4 frames -> 8 slots.
    Fixture f(16 * MiB);
    int got = 0;
    while (f.alloc(1, kPage))
        got++;
    EXPECT_EQ(got, 8); // all slots used, then failure
    EXPECT_LE(f.pt.liveEntries(), f.pt.totalSlots());
}

TEST(VaAllocator, RemoveProcessDropsState)
{
    Fixture f;
    auto a = f.alloc(1, kPage);
    ASSERT_TRUE(a.has_value());
    f.va.removeProcess(1);
    EXPECT_EQ(f.va.allocatedBytes(1), 0u);
    EXPECT_FALSE(f.va.free(1, a->addr).has_value());
}

} // namespace
} // namespace clio
