/**
 * @file
 * Energy accounting (§7.3, Fig. 21) and FPGA resource estimation
 * (Fig. 22): MN power selection per system, per-request energy math,
 * and the utilization estimator's calibration against the paper's
 * reported ZCU106 numbers.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "energy/energy.hh"
#include "energy/resources.hh"

namespace clio {
namespace {

const FpgaUtilization &
rowNamed(const std::vector<FpgaUtilization> &rows, const std::string &name)
{
    auto it = std::find_if(rows.begin(), rows.end(),
                           [&](const FpgaUtilization &r) {
                               return r.name == name;
                           });
    EXPECT_NE(it, rows.end()) << "missing row " << name;
    return *it;
}

TEST(Energy, SystemNamesAreUnique)
{
    const SystemKind kinds[] = {
        SystemKind::kClio,   SystemKind::kClover,
        SystemKind::kHerd,   SystemKind::kHerdBluefield,
        SystemKind::kLegoOs, SystemKind::kRdma,
    };
    std::vector<std::string> names;
    for (SystemKind k : kinds)
        names.emplace_back(systemName(k));
    std::sort(names.begin(), names.end());
    EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(Energy, MnPowerMatchesHardware)
{
    const EnergyConfig cfg;
    // The CBoard is the cheapest active MN; CPU-server MNs the dearest.
    EXPECT_DOUBLE_EQ(mnPowerWatts(cfg, SystemKind::kClio),
                     cfg.cboard_watts);
    EXPECT_DOUBLE_EQ(mnPowerWatts(cfg, SystemKind::kClover),
                     cfg.passive_mn_watts);
    EXPECT_DOUBLE_EQ(mnPowerWatts(cfg, SystemKind::kHerdBluefield),
                     cfg.bluefield_watts);
    for (SystemKind k : {SystemKind::kHerd, SystemKind::kLegoOs,
                         SystemKind::kRdma})
        EXPECT_DOUBLE_EQ(mnPowerWatts(cfg, k), cfg.mn_server_watts);
    EXPECT_LT(mnPowerWatts(cfg, SystemKind::kClio),
              mnPowerWatts(cfg, SystemKind::kHerd));
}

TEST(Energy, CnShareChargesPassiveMemorySystems)
{
    // §2.3: passive-memory designs push management onto CN CPUs.
    EXPECT_GT(cnShareMultiplier(SystemKind::kClover), 1.0);
    EXPECT_GT(cnShareMultiplier(SystemKind::kRdma), 1.0);
    EXPECT_DOUBLE_EQ(cnShareMultiplier(SystemKind::kClio), 1.0);
    EXPECT_DOUBLE_EQ(cnShareMultiplier(SystemKind::kHerd), 1.0);
}

TEST(Energy, PerRequestEnergyMath)
{
    EnergyConfig cfg;
    // 1 simulated second serving 1000 requests => 1 ms of node time
    // per request; mJ = W * s * 1e3.
    const auto e = perRequestEnergy(cfg, SystemKind::kClio, kSecond, 1000);
    EXPECT_NEAR(e.mn_mj, cfg.cboard_watts * 1e-3 * 1e3, 1e-9);
    EXPECT_NEAR(e.cn_mj,
                cfg.cn_server_watts * cfg.cn_core_fraction * 1e-3 * 1e3,
                1e-9);
    EXPECT_NEAR(e.total(), e.cn_mj + e.mn_mj, 1e-12);
}

TEST(Energy, SlowerRunsBurnMoreEnergy)
{
    // HERD-BF is "low power" yet loses on energy/request once its
    // runtime stretches (the Fig. 21 headline).
    const EnergyConfig cfg;
    const auto fast =
        perRequestEnergy(cfg, SystemKind::kHerdBluefield, kSecond, 1000);
    const auto slow = perRequestEnergy(cfg, SystemKind::kHerdBluefield,
                                       4 * kSecond, 1000);
    EXPECT_NEAR(slow.total(), 4.0 * fast.total(), 1e-9);
    const auto clio_slow =
        perRequestEnergy(cfg, SystemKind::kClio, 4 * kSecond, 1000);
    EXPECT_LT(clio_slow.mn_mj, slow.mn_mj);
}

TEST(Resources, DefaultConfigReproducesPaperFig22)
{
    const auto rows = clioUtilization(ModelConfig::prototype());
    const auto &total = rowNamed(rows, "Clio (Total)");
    const auto &virtmem = rowNamed(rows, "VirtMem");
    const auto &netstack = rowNamed(rows, "NetStack");
    const auto &gbn = rowNamed(rows, "Go-Back-N");
    // Paper: Clio 31%/31%, VirtMem 5.5%/3%, NetStack 2.3%/1.7%,
    // Go-Back-N 5.8%/2.6%. Allow a calibration tolerance.
    EXPECT_NEAR(total.lut_pct, 31.0, 1.5);
    EXPECT_NEAR(total.bram_pct, 31.0, 1.5);
    EXPECT_NEAR(virtmem.lut_pct, 5.5, 0.5);
    EXPECT_NEAR(virtmem.bram_pct, 3.0, 0.5);
    EXPECT_NEAR(netstack.lut_pct, 2.3, 0.3);
    EXPECT_NEAR(netstack.bram_pct, 1.7, 0.3);
    EXPECT_NEAR(gbn.lut_pct, 5.8, 0.5);
    EXPECT_NEAR(gbn.bram_pct, 2.6, 0.5);
}

TEST(Resources, UtilizationScalesWithTlbAndDedup)
{
    auto small = ModelConfig::prototype();
    auto big = ModelConfig::prototype();
    big.fast_path.tlb_entries = small.fast_path.tlb_entries * 4;
    big.dedup.entries = small.dedup.entries * 4;
    const auto s = clioUtilization(small);
    const auto b = clioUtilization(big);
    EXPECT_GT(rowNamed(b, "VirtMem").lut_pct,
              rowNamed(s, "VirtMem").lut_pct);
    EXPECT_GT(rowNamed(b, "VirtMem").bram_pct,
              rowNamed(s, "VirtMem").bram_pct);
    EXPECT_GT(rowNamed(b, "NetStack").bram_pct,
              rowNamed(s, "NetStack").bram_pct);
    // The Go-Back-N reference block is config independent.
    EXPECT_DOUBLE_EQ(rowNamed(b, "Go-Back-N").lut_pct,
                     rowNamed(s, "Go-Back-N").lut_pct);
}

TEST(Resources, ComparisonRowsQuotePublishedNumbers)
{
    const auto rows = comparisonUtilization();
    ASSERT_EQ(rows.size(), 2u);
    const auto &strom = rowNamed(rows, "StRoM-RoCEv2");
    const auto &tonic = rowNamed(rows, "Tonic-SACK");
    EXPECT_DOUBLE_EQ(strom.lut_pct, 39.0);
    EXPECT_DOUBLE_EQ(strom.bram_pct, 76.0);
    EXPECT_DOUBLE_EQ(tonic.lut_pct, 48.0);
    EXPECT_DOUBLE_EQ(tonic.bram_pct, 40.0);
    // Clio's whole FPGA budget undercuts both published transports.
    const auto clio_total =
        rowNamed(clioUtilization(ModelConfig::prototype()), "Clio (Total)");
    EXPECT_LT(clio_total.bram_pct, strom.bram_pct);
    EXPECT_LT(clio_total.bram_pct, tonic.bram_pct);
}

TEST(Resources, OffloadRowsScaleLutPerEngineBramShared)
{
    OffloadDescriptor a = defaultOffloadDescriptor(1);
    a.name = "chase";
    a.lut = 5000.0;
    a.bram_bytes = 2048.0;
    OffloadDescriptor b = defaultOffloadDescriptor(2);
    b.name = "kv";
    b.lut = 10000.0;
    b.bram_bytes = 4096.0;
    const FpgaDevice dev;
    const auto one = offloadUtilization({a, b}, 1, dev);
    const auto two = offloadUtilization({a, b}, 2, dev);
    // Compute logic is replicated per engine...
    EXPECT_DOUBLE_EQ(rowNamed(two, "chase").lut_pct,
                     2.0 * rowNamed(one, "chase").lut_pct);
    // ...staging memory is shared across engines.
    EXPECT_DOUBLE_EQ(rowNamed(two, "kv").bram_pct,
                     rowNamed(one, "kv").bram_pct);
    const auto &total = rowNamed(two, "Offloads (Total)");
    EXPECT_DOUBLE_EQ(total.lut_pct,
                     rowNamed(two, "chase").lut_pct +
                         rowNamed(two, "kv").lut_pct);
}

TEST(Energy, OffloadEnergyTracksEngineBusyTime)
{
    EnergyConfig cfg;
    // 1 ms of engine occupancy at offload_engine_watts.
    const double mj = offloadEnergyMj(cfg, kMillisecond);
    EXPECT_DOUBLE_EQ(mj, cfg.offload_engine_watts * 1e-3 * 1e3);
    EXPECT_GT(offloadEnergyMj(cfg, 2 * kMillisecond), mj);
}

} // namespace
} // namespace clio
