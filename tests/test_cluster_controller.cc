/**
 * @file
 * Global controller tests (§4.7): window grants, placement, region
 * migration edge cases, pressure balancing, and the windowed-mode
 * non-collision guarantee.
 */

#include <gtest/gtest.h>

#include <set>

#include "cluster/cluster.hh"

namespace clio {
namespace {

TEST(Controller, WindowsGrantedOnFirstAllocation)
{
    Cluster cluster(ModelConfig::prototype(), 1, 2);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr a = client.ralloc(4 * MiB).value_or(0);
    ASSERT_NE(a, 0u);
    const std::uint32_t mn = cluster.mnIndexOf(client.mnFor(a));
    EXPECT_GT(cluster.mn(mn).vaAllocator().windowBytes(client.pid()), 0u);
    // The other MN has no window yet for this process.
    EXPECT_EQ(cluster.mn(1 - mn).vaAllocator().windowBytes(client.pid()),
              0u);
}

TEST(Controller, LargeAllocationGetsContiguousRegions)
{
    auto cfg = ModelConfig::prototype();
    cfg.mn_phys_bytes = 8 * GiB;
    Cluster cluster(cfg, 1, 2);
    ClioClient &client = cluster.createClient(0);
    // 2.5 GB > one 1 GB region: the controller must hand out several
    // contiguous regions so the allocation fits one VA range.
    const VirtAddr big = client.ralloc(2560 * MiB).value_or(0);
    ASSERT_NE(big, 0u);
    std::uint64_t v = 42;
    ASSERT_EQ(client.rwrite(big + 2 * GiB, &v, 8), Status::kOk);
    std::uint64_t out = 0;
    ASSERT_EQ(client.rread(big + 2 * GiB, &out, 8), Status::kOk);
    EXPECT_EQ(out, 42u);
}

TEST(Controller, ProcessesGetDisjointVasAcrossMns)
{
    Cluster cluster(ModelConfig::prototype(), 2, 4);
    std::set<std::pair<ProcId, VirtAddr>> seen;
    for (int c = 0; c < 6; c++) {
        ClioClient &client = cluster.createClient(
            static_cast<std::uint32_t>(c % 2));
        std::set<VirtAddr> own;
        for (int i = 0; i < 8; i++) {
            const VirtAddr a = client.ralloc(4 * MiB).value_or(0);
            ASSERT_NE(a, 0u);
            // No VA handed out twice within one process, regardless of
            // which MN served the allocation.
            EXPECT_TRUE(own.insert(a).second);
        }
    }
}

TEST(Controller, MigrationFailsGracefullyWithoutTarget)
{
    // Single MN: nothing to migrate to.
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    client.ralloc(4 * MiB);
    auto report = cluster.migrateRegion(client.pid(), 0);
    EXPECT_FALSE(report.ok);
}

TEST(Controller, MigrationOfUnknownRegionFails)
{
    Cluster cluster(ModelConfig::prototype(), 1, 2);
    ClioClient &client = cluster.createClient(0);
    client.ralloc(4 * MiB);
    auto report = cluster.migrateRegion(client.pid(), 0, 512 * GiB);
    EXPECT_FALSE(report.ok);
}

TEST(Controller, MigrationRollsBackWhenDstFull)
{
    auto cfg = ModelConfig::prototype();
    cfg.dist.region_size = 16 * MiB;
    Cluster cluster(cfg, 1, 2, 32 * MiB); // 8 frames per MN
    ClioClient &client = cluster.createClient(0);

    // Fill BOTH MNs nearly full so no destination can admit a region.
    std::vector<VirtAddr> addrs;
    for (int i = 0; i < 3; i++) {
        const VirtAddr a = client.ralloc(12 * MiB).value_or(0);
        ASSERT_NE(a, 0u);
        std::uint64_t v = i;
        for (std::uint64_t off = 0; off < 12 * MiB; off += 4 * MiB)
            client.rwrite(a + off, &v, 8);
        addrs.push_back(a);
    }
    const std::uint32_t src = cluster.mnIndexOf(client.mnFor(addrs[0]));
    const VirtAddr region =
        addrs[0] / cfg.dist.region_size * cfg.dist.region_size;
    auto report = cluster.migrateRegion(client.pid(), src, region);
    // Whether it succeeded or rolled back, data must stay correct.
    for (int i = 0; i < 3; i++) {
        std::uint64_t out = 99;
        ASSERT_EQ(client.rread(addrs[static_cast<std::size_t>(i)], &out,
                               8),
                  Status::kOk);
        EXPECT_EQ(out, static_cast<std::uint64_t>(i));
    }
    (void)report;
}

TEST(Controller, BalancePressureReducesHotMn)
{
    auto cfg = ModelConfig::prototype();
    cfg.dist.region_size = 16 * MiB;
    Cluster cluster(cfg, 1, 3, 64 * MiB);
    ClioClient &client = cluster.createClient(0);

    // Load up whatever MN gets the allocations.
    std::vector<VirtAddr> addrs;
    for (int i = 0; i < 8; i++) {
        const VirtAddr a = client.ralloc(8 * MiB).value_or(0);
        ASSERT_NE(a, 0u);
        std::uint64_t v = 1000 + i;
        client.rwrite(a, &v, 8);
        client.rwrite(a + 4 * MiB, &v, 8);
        addrs.push_back(a);
    }
    double max_before = 0;
    for (std::uint32_t m = 0; m < 3; m++)
        max_before = std::max(max_before, cluster.mn(m).memoryPressure());

    auto reports = cluster.balancePressure();
    double max_after = 0;
    for (std::uint32_t m = 0; m < 3; m++)
        max_after = std::max(max_after, cluster.mn(m).memoryPressure());
    if (!reports.empty()) {
        EXPECT_LT(max_after, max_before);
    }
    // Integrity after any movement.
    for (int i = 0; i < 8; i++) {
        std::uint64_t out = 0;
        ASSERT_EQ(client.rread(addrs[static_cast<std::size_t>(i)], &out,
                               8),
                  Status::kOk);
        EXPECT_EQ(out, 1000u + static_cast<unsigned>(i));
    }
}

TEST(Controller, PlacementPrefersLeastPressured)
{
    auto cfg = ModelConfig::prototype();
    Cluster cluster(cfg, 1, 2, 64 * MiB);
    ClioClient &client = cluster.createClient(0);
    // Consume most of one MN by faulting pages.
    const VirtAddr a = client.ralloc(32 * MiB).value_or(0);
    std::uint64_t v = 7;
    for (std::uint64_t off = 0; off < 32 * MiB; off += 4 * MiB)
        client.rwrite(a + off, &v, 8);
    const std::uint32_t loaded = cluster.mnIndexOf(client.mnFor(a));

    // Fresh allocations should now land on the other MN.
    ClioClient &other = cluster.createClient(0);
    const VirtAddr b = other.ralloc(8 * MiB).value_or(0);
    ASSERT_NE(b, 0u);
    EXPECT_NE(cluster.mnIndexOf(other.mnFor(b)), loaded);
}

} // namespace
} // namespace clio
