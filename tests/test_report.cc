/**
 * @file
 * Smoke tests for the cluster report renderer (it must reflect real
 * counters and never crash on fresh or busy clusters).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "cluster/cluster.hh"
#include "sim/report.hh"

namespace clio {
namespace {

std::string
render(Cluster &cluster)
{
    char *data = nullptr;
    std::size_t len = 0;
    std::FILE *mem = open_memstream(&data, &len);
    printClusterReport(cluster, mem);
    std::fclose(mem);
    std::string out(data, len);
    free(data);
    return out;
}

TEST(Report, FreshClusterRenders)
{
    Cluster cluster(ModelConfig::prototype(), 2, 2);
    const std::string out = render(cluster);
    EXPECT_NE(out.find("CN0"), std::string::npos);
    EXPECT_NE(out.find("MN1"), std::string::npos);
    EXPECT_NE(out.find("network:"), std::string::npos);
}

TEST(Report, CountersShowUp)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(4 * MiB).value_or(0);
    std::uint64_t v = 1;
    client.rwrite(addr, &v, 8);
    client.rread(addr, &v, 8);
    const std::string out = render(cluster);
    EXPECT_NE(out.find("reads=1"), std::string::npos);
    EXPECT_NE(out.find("writes=1"), std::string::npos);
    EXPECT_NE(out.find("allocs=1"), std::string::npos);
    EXPECT_NE(out.find("faults=1"), std::string::npos);

    const std::string summary = clusterSummaryLine(cluster);
    EXPECT_NE(summary.find("1 reads"), std::string::npos);
    EXPECT_NE(summary.find("1 writes"), std::string::npos);
}

} // namespace
} // namespace clio
