/**
 * @file
 * Parameterized property sweeps (TEST_P): system invariants must hold
 * across page-table geometries, page sizes, MTUs, and fault-injection
 * intensities — not just at the paper's defaults.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <tuple>
#include <vector>

#include "cluster/cluster.hh"
#include "cluster/shard_map.hh"
#include "pagetable/hash_page_table.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "valloc/va_allocator.hh"

namespace clio {
namespace {

// ----------------------------------------------------------------
// Page table geometry sweep: overflow-freedom is invariant.
// ----------------------------------------------------------------

using Geometry = std::tuple<std::uint32_t /*bucket_slots*/,
                            double /*overprovision*/>;

class PageTableGeometry : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(PageTableGeometry, GuardedInsertsNeverOverflow)
{
    const auto [slots, factor] = GetParam();
    HashPageTable pt(512 * MiB, 4 * MiB, slots, factor);
    VaAllocator va(4 * MiB, 1ull << 40);
    Rng rng(slots * 1000 + static_cast<std::uint64_t>(factor * 10));

    std::uint64_t allocated_pages = 0;
    for (int i = 0; i < 400; i++) {
        const ProcId pid = 1 + static_cast<ProcId>(rng.uniformInt(4));
        const std::uint64_t pages = rng.uniformRange(1, 6);
        auto res = va.allocate(pid, pages * 4 * MiB, kPermReadWrite, pt,
                               50000);
        if (!res)
            break; // table genuinely full: acceptable for tight factors
        for (auto vpn : res->vpns)
            pt.insert(pid, vpn, kPermReadWrite); // must never panic
        allocated_pages += pages;
        ASSERT_LE(pt.maxBucketFill(), slots);
    }
    EXPECT_GT(allocated_pages, 0u);
    EXPECT_LE(pt.liveEntries(), pt.totalSlots());
}

TEST_P(PageTableGeometry, EveryInsertedEntryIsFindable)
{
    const auto [slots, factor] = GetParam();
    HashPageTable pt(256 * MiB, 4 * MiB, slots, factor);
    Rng rng(7);
    std::vector<std::pair<ProcId, std::uint64_t>> inserted;
    for (int i = 0; i < 200; i++) {
        const ProcId pid = 1 + static_cast<ProcId>(rng.uniformInt(3));
        const std::uint64_t vpn = rng.uniformInt(1 << 20);
        std::vector<std::uint64_t> one{vpn};
        if (pt.lookup(pid, vpn) || !pt.canInsert(pid, one))
            continue;
        pt.insert(pid, vpn, kPermRead);
        inserted.emplace_back(pid, vpn);
    }
    for (const auto &[pid, vpn] : inserted) {
        const Pte *pte = pt.lookup(pid, vpn);
        ASSERT_NE(pte, nullptr);
        EXPECT_EQ(pte->pid, pid);
        EXPECT_EQ(pte->vpn, vpn);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PageTableGeometry,
    ::testing::Values(Geometry{4, 1.5}, Geometry{8, 1.25},
                      Geometry{8, 2.0}, Geometry{8, 3.0},
                      Geometry{16, 2.0}, Geometry{2, 4.0}));

// ----------------------------------------------------------------
// Page size sweep: end-to-end correctness at any translation unit.
// ----------------------------------------------------------------

class PageSizeSweep
    : public ::testing::TestWithParam<std::uint64_t /*page size*/>
{
};

TEST_P(PageSizeSweep, EndToEndRoundTripAndFaultCount)
{
    auto cfg = ModelConfig::prototype();
    cfg.page_table.page_size = GetParam();
    cfg.mn_phys_bytes = 256 * MiB;
    Cluster cluster(cfg, 1, 1);
    ClioClient &client = cluster.createClient(0);

    const std::uint64_t span = 4 * GetParam();
    const VirtAddr addr = client.ralloc(span).value_or(0);
    ASSERT_NE(addr, 0u);

    // Write a pattern straddling the first page boundary.
    std::vector<std::uint8_t> data(
        std::min<std::uint64_t>(GetParam() / 2, 1 * MiB));
    Rng rng(GetParam());
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());
    const VirtAddr at = addr + GetParam() - data.size() / 2;
    ASSERT_EQ(client.rwrite(at, data.data(), data.size()), Status::kOk);
    std::vector<std::uint8_t> out(data.size());
    ASSERT_EQ(client.rread(at, out.data(), out.size()), Status::kOk);
    EXPECT_EQ(out, data);
    // Exactly the touched pages faulted.
    EXPECT_EQ(cluster.mn(0).stats().page_faults, 2u);
}

INSTANTIATE_TEST_SUITE_P(PageSizes, PageSizeSweep,
                         ::testing::Values(64 * KiB, 256 * KiB, 1 * MiB,
                                           4 * MiB, 16 * MiB));

// ----------------------------------------------------------------
// MTU sweep: split/reassembly integrity at any frame size.
// ----------------------------------------------------------------

class MtuSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(MtuSweep, MultiPacketIntegrity)
{
    auto cfg = ModelConfig::prototype();
    cfg.net.mtu = GetParam();
    Cluster cluster(cfg, 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(8 * MiB).value_or(0);

    std::vector<std::uint8_t> data(20 * KiB);
    Rng rng(GetParam());
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());
    ASSERT_EQ(client.rwrite(addr, data.data(), data.size()), Status::kOk);
    std::vector<std::uint8_t> out(data.size());
    ASSERT_EQ(client.rread(addr, out.data(), out.size()), Status::kOk);
    EXPECT_EQ(out, data);
}

INSTANTIATE_TEST_SUITE_P(Mtus, MtuSweep,
                         ::testing::Values(256u, 576u, 1500u, 4096u,
                                           9000u));

// ----------------------------------------------------------------
// Fault-injection sweep: correctness under any loss/corruption mix.
// ----------------------------------------------------------------

using Faults = std::tuple<double /*loss*/, double /*corrupt*/,
                          double /*reorder*/>;

class FaultSweep : public ::testing::TestWithParam<Faults>
{
};

TEST_P(FaultSweep, DataIntegrityAndProgress)
{
    const auto [loss, corrupt, reorder] = GetParam();
    auto cfg = ModelConfig::prototype();
    cfg.net.loss_rate = loss;
    cfg.net.corrupt_rate = corrupt;
    cfg.net.reorder_rate = reorder;
    cfg.clib.max_retries = 12;
    Cluster cluster(cfg, 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(16 * MiB).value_or(0);
    ASSERT_NE(addr, 0u);

    Rng rng(99);
    std::vector<std::uint64_t> mirror(64);
    for (int i = 0; i < 64; i++) {
        mirror[static_cast<std::size_t>(i)] = rng.next();
        ASSERT_EQ(client.rwrite(addr + i * 128,
                                &mirror[static_cast<std::size_t>(i)], 8),
                  Status::kOk);
    }
    // One larger multi-packet write under the same faults. Whole-
    // request retries make big transfers exponentially unlikely to
    // land under heavy per-packet loss (the paper deploys PFC to keep
    // loss rare), so scale the transfer with the injected rate.
    std::vector<std::uint8_t> big(loss + corrupt > 0.1 ? 4 * KiB
                                                       : 24 * KiB);
    for (auto &b : big)
        b = static_cast<std::uint8_t>(rng.next());
    ASSERT_EQ(client.rwrite(addr + 8 * MiB, big.data(), big.size()),
              Status::kOk);

    for (int i = 0; i < 64; i++) {
        std::uint64_t v = 0;
        ASSERT_EQ(client.rread(addr + i * 128, &v, 8), Status::kOk);
        EXPECT_EQ(v, mirror[static_cast<std::size_t>(i)]);
    }
    std::vector<std::uint8_t> out(big.size());
    ASSERT_EQ(client.rread(addr + 8 * MiB, out.data(), out.size()),
              Status::kOk);
    EXPECT_EQ(out, big);
}

INSTANTIATE_TEST_SUITE_P(
    FaultMixes, FaultSweep,
    ::testing::Values(Faults{0, 0, 0}, Faults{0.05, 0, 0},
                      Faults{0, 0.05, 0}, Faults{0, 0, 0.3},
                      Faults{0.05, 0.05, 0.1},
                      Faults{0.15, 0.05, 0.2}));

// ----------------------------------------------------------------
// Dedup-correctness sweep: the T4 guarantee under forced retries.
// ----------------------------------------------------------------

class RetrySweep : public ::testing::TestWithParam<double /*loss*/>
{
};

TEST_P(RetrySweep, CountersNeverDoubleApply)
{
    // Fetch-add increments through a lossy network: every op is
    // retried until acked, and the dedup buffer must ensure each
    // logical increment applies exactly once (T4).
    auto cfg = ModelConfig::prototype();
    cfg.net.loss_rate = GetParam();
    cfg.clib.max_retries = 20;
    Cluster cluster(cfg, 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr counter = client.ralloc(4 * MiB).value_or(0);
    ASSERT_NE(counter, 0u);

    const int increments = 120;
    for (int i = 0; i < increments; i++)
        ASSERT_TRUE(client.rfaa(counter, 1).ok());

    std::uint64_t final_value = 0;
    ASSERT_EQ(client.rread(counter, &final_value, 8), Status::kOk);
    EXPECT_EQ(final_value, static_cast<std::uint64_t>(increments));
    if (GetParam() > 0) {
        EXPECT_GT(cluster.cn(0).stats().retries, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(LossRates, RetrySweep,
                         ::testing::Values(0.0, 0.02, 0.08, 0.15));

// ----------------------------------------------------------------
// Histogram property sweep: the upper-edge reporting contract must
// hold for random sample sets of any magnitude, not just the defaults
// the unit tests pin down.
// ----------------------------------------------------------------

class HistogramSweep : public ::testing::TestWithParam<int /*magnitude*/>
{
};

TEST_P(HistogramSweep, PercentileNeverUnderstatesAndNeverExceedsMax)
{
    // For any sample set and any p: percentile(p) >= the exact order
    // statistic at rank ceil(p/100 * n) (never understates a latency)
    // and <= the exact maximum (clamped); p = 0 is the exact minimum.
    const int magnitude = GetParam();
    Rng rng(991 + static_cast<std::uint64_t>(magnitude));
    for (int round = 0; round < 20; round++) {
        LatencyHistogram h;
        std::vector<Tick> samples;
        const auto n = 1 + rng.uniformInt(400);
        for (std::uint64_t i = 0; i < n; i++) {
            const Tick v = rng.uniformRange(1, Tick{1} << magnitude);
            samples.push_back(v);
            h.record(v);
        }
        std::sort(samples.begin(), samples.end());
        ASSERT_EQ(h.count(), n);
        ASSERT_EQ(h.percentile(0.0), samples.front());
        ASSERT_EQ(h.percentile(100.0), samples.back());
        for (int q = 0; q < 32; q++) {
            const double p = rng.uniformDouble() * 100.0;
            const Tick reported = h.percentile(p);
            auto rank = static_cast<std::uint64_t>(
                std::ceil(p / 100.0 * static_cast<double>(n)));
            if (rank == 0)
                rank = 1;
            const Tick exact = samples[rank - 1];
            ASSERT_GE(reported, exact)
                << "p=" << p << " n=" << n << " magnitude=" << magnitude;
            ASSERT_LE(reported, samples.back())
                << "p=" << p << " n=" << n << " magnitude=" << magnitude;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, HistogramSweep,
                         ::testing::Values(8, 20, 34, 50, 63));

// ----------------------------------------------------------------
// Shard-map property sweep: consistent-hashing guarantees that the
// recovery path (MN crash → removeMn, rejoin → addMn) leans on.
// ----------------------------------------------------------------

/** Sampled (pid, region) keyspace: placements under the ring. */
std::vector<std::uint32_t>
placements(const ShardMap &map, std::size_t keys)
{
    std::vector<std::uint32_t> out;
    out.reserve(keys);
    for (std::size_t k = 0; k < keys; k++) {
        const auto pid = static_cast<ProcId>(1 + k / 8);
        out.push_back(map.ownerOf(pid, k % 8));
    }
    return out;
}

class ShardMapSweep
    : public ::testing::TestWithParam<std::uint32_t /*initial MNs*/>
{
};

TEST_P(ShardMapSweep, AddMovesBoundedFractionOntoNewMn)
{
    const std::uint32_t m = GetParam();
    constexpr std::size_t kKeys = 4000;
    ShardMap map;
    for (std::uint32_t i = 0; i < m; i++)
        map.addMn(i, i % 3);
    const auto before = placements(map, kKeys);

    map.addMn(m, m % 3);
    const auto after = placements(map, kKeys);

    std::size_t moved = 0;
    for (std::size_t k = 0; k < kKeys; k++) {
        if (after[k] != before[k]) {
            moved++;
            // Consistent hashing: a key only ever moves TO the new
            // member, never between surviving ones.
            EXPECT_EQ(after[k], m) << "key " << k << " reshuffled "
                                   << before[k] << "->" << after[k];
        }
    }
    // Expected share is 1/(m+1); allow generous vnode-variance slack
    // but fail on anything resembling a rehash-everything design.
    const double bound = 2.5 * static_cast<double>(kKeys) /
                         static_cast<double>(m + 1);
    EXPECT_LE(static_cast<double>(moved), bound) << "m=" << m;
    EXPECT_GT(moved, 0u);
}

TEST_P(ShardMapSweep, RemoveRestoresPlacementsExactly)
{
    // Crash + rejoin must be a placement no-op: the ring points are
    // deterministic per MN, so removeMn(x) followed by addMn(x) gives
    // back byte-identical placements. This is what lets the cluster
    // re-home every process to its original MN after a restart.
    const std::uint32_t m = GetParam();
    constexpr std::size_t kKeys = 4000;
    ShardMap map;
    for (std::uint32_t i = 0; i < m; i++)
        map.addMn(i, i % 3);
    const auto before = placements(map, kKeys);

    Rng rng(m * 31 + 5);
    for (int round = 0; round < 6; round++) {
        const auto victim =
            static_cast<std::uint32_t>(rng.uniformInt(m));
        map.removeMn(victim);
        // While the victim is out, its keys fall to ring successors;
        // every key still has an owner among the survivors.
        if (map.mnCount() > 0) {
            for (const auto owner : placements(map, kKeys))
                EXPECT_NE(owner, victim);
        }
        map.addMn(victim, victim % 3);
        EXPECT_EQ(placements(map, kKeys), before) << "round " << round;
    }
}

TEST_P(ShardMapSweep, MembershipOrderDoesNotMatter)
{
    // Placements depend only on the member SET, not on join order —
    // two controllers that converged on the same membership agree on
    // every placement.
    const std::uint32_t m = GetParam();
    ShardMap forward;
    ShardMap reverse;
    for (std::uint32_t i = 0; i < m; i++)
        forward.addMn(i, i % 3);
    for (std::uint32_t i = m; i > 0; i--)
        reverse.addMn(i - 1, (i - 1) % 3);
    EXPECT_EQ(placements(forward, 2000), placements(reverse, 2000));
}

TEST_P(ShardMapSweep, RackPreferenceHoldsWheneverRackHasMns)
{
    // ownerNear must return a rack-local MN for every key whenever the
    // preferred rack's sub-ring is non-empty — the paper's CNs always
    // get same-ToR memory if their rack hosts any MN at all.
    const std::uint32_t m = GetParam();
    constexpr RackId kRacks = 3;
    ShardMap map;
    for (std::uint32_t i = 0; i < m; i++)
        map.addMn(i, i % kRacks);

    std::vector<bool> rack_has_mn(kRacks, false);
    for (std::uint32_t i = 0; i < m; i++)
        rack_has_mn[i % kRacks] = true;

    for (ProcId pid = 1; pid <= 50; pid++) {
        for (std::uint64_t region = 0; region < 8; region++) {
            for (RackId rack = 0; rack < kRacks; rack++) {
                const std::uint32_t owner =
                    map.ownerNear(pid, region, rack);
                ASSERT_LT(owner, m);
                if (rack_has_mn[rack]) {
                    EXPECT_EQ(map.rackOf(owner), rack)
                        << "pid=" << pid << " region=" << region
                        << " rack=" << rack << " owner=" << owner;
                }
            }
        }
    }

    // Empty a rack one MN at a time: preference must hold right up
    // until the sub-ring is empty, then spill remotely (still valid).
    for (std::uint32_t i = 0; i < m; i += kRacks)
        map.removeMn(i); // removes every rack-0 MN
    if (m >= kRacks) {
        for (ProcId pid = 1; pid <= 20; pid++) {
            const std::uint32_t owner = map.ownerNear(pid, 0, 0);
            EXPECT_NE(map.rackOf(owner), 0u); // rack 0 has no MNs left
        }
    }
}

INSTANTIATE_TEST_SUITE_P(RingSizes, ShardMapSweep,
                         ::testing::Values(1u, 2u, 3u, 6u, 12u, 24u));

} // namespace
} // namespace clio
