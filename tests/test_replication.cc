/**
 * @file
 * Tests for the §8 replicated-write primitive: write-all/read-one
 * semantics, replica placement, failover, and degraded operation.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "clib/replication.hh"
#include "cluster/cluster.hh"

namespace clio {
namespace {

TEST(Replication, WriteAllReadOne)
{
    Cluster cluster(ModelConfig::prototype(), 1, 2);
    ClioClient &client = cluster.createClient(0);
    ReplicatedRegion region(client, 8 * MiB, cluster.mn(0).nodeId(),
                            cluster.mn(1).nodeId());
    ASSERT_TRUE(region.ok());

    const char msg[] = "durable-ish";
    ASSERT_EQ(region.write(100, msg, sizeof(msg)), Status::kOk);
    char out[sizeof(msg)] = {};
    ASSERT_EQ(region.read(100, out, sizeof(out)), Status::kOk);
    EXPECT_STREQ(out, msg);
    // Both MNs hold the bytes (one write each + faults).
    EXPECT_GE(cluster.mn(0).stats().writes, 1u);
    EXPECT_GE(cluster.mn(1).stats().writes, 1u);
    EXPECT_EQ(region.failovers(), 0u);
}

TEST(Replication, FailoverServesFromBackup)
{
    Cluster cluster(ModelConfig::prototype(), 1, 2);
    ClioClient &client = cluster.createClient(0);
    ReplicatedRegion region(client, 4 * MiB, cluster.mn(0).nodeId(),
                            cluster.mn(1).nodeId());
    ASSERT_TRUE(region.ok());
    std::uint64_t v = 0xD00D;
    ASSERT_EQ(region.write(0, &v, 8), Status::kOk);

    // "Crash" the primary: wipe this process' state there, so reads
    // against it fail (the failure mode a real MN crash+restart has).
    cluster.mn(0).destroyProcess(client.pid());
    std::uint64_t out = 0;
    ASSERT_EQ(region.read(0, &out, 8), Status::kOk);
    EXPECT_EQ(out, 0xD00Du);
    EXPECT_EQ(region.failovers(), 1u);
    EXPECT_FALSE(region.primaryAlive());

    // Writes continue in degraded mode against the backup.
    std::uint64_t v2 = 0xD11D;
    ASSERT_EQ(region.write(8, &v2, 8), Status::kOk);
    ASSERT_EQ(region.read(8, &out, 8), Status::kOk);
    EXPECT_EQ(out, 0xD11Du);
}

TEST(Replication, ReplicasOnDistinctMnsByConstruction)
{
    Cluster cluster(ModelConfig::prototype(), 1, 3);
    ClioClient &client = cluster.createClient(0);
    ReplicatedRegion region(client, 4 * MiB, cluster.mn(1).nodeId(),
                            cluster.mn(2).nodeId());
    ASSERT_TRUE(region.ok());
    std::uint64_t v = 5;
    region.write(0, &v, 8);
    EXPECT_EQ(cluster.mn(0).stats().writes, 0u); // untouched MN
    region.destroy();
    // After destroy, reads fail.
    std::uint64_t out = 0;
    EXPECT_NE(region.read(0, &out, 8), Status::kOk);
}

TEST(Replication, SurvivesLossyNetwork)
{
    auto cfg = ModelConfig::prototype();
    cfg.net.loss_rate = 0.08;
    cfg.clib.max_retries = 10;
    Cluster cluster(cfg, 1, 2);
    ClioClient &client = cluster.createClient(0);
    ReplicatedRegion region(client, 4 * MiB, cluster.mn(0).nodeId(),
                            cluster.mn(1).nodeId());
    ASSERT_TRUE(region.ok());
    for (int i = 0; i < 50; i++) {
        std::uint64_t v = 1000 + i;
        ASSERT_EQ(region.write(static_cast<std::uint64_t>(i) * 8, &v, 8),
                  Status::kOk);
    }
    for (int i = 0; i < 50; i++) {
        std::uint64_t out = 0;
        ASSERT_EQ(region.read(static_cast<std::uint64_t>(i) * 8, &out, 8),
                  Status::kOk);
        EXPECT_EQ(out, 1000u + static_cast<unsigned>(i));
    }
}

} // namespace
} // namespace clio
