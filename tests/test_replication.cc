/**
 * @file
 * Tests for the §8 replicated-write primitive: write-all/read-one
 * semantics, replica placement, failover, and degraded operation.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "clib/replication.hh"
#include "cluster/cluster.hh"

namespace clio {
namespace {

TEST(Replication, WriteAllReadOne)
{
    Cluster cluster(ModelConfig::prototype(), 1, 2);
    ClioClient &client = cluster.createClient(0);
    ReplicatedRegion region(client, 8 * MiB, cluster.mn(0).nodeId(),
                            cluster.mn(1).nodeId());
    ASSERT_TRUE(region.ok());

    const char msg[] = "durable-ish";
    ASSERT_EQ(region.write(100, msg, sizeof(msg)), Status::kOk);
    char out[sizeof(msg)] = {};
    ASSERT_EQ(region.read(100, out, sizeof(out)), Status::kOk);
    EXPECT_STREQ(out, msg);
    // Both MNs hold the bytes (one write each + faults).
    EXPECT_GE(cluster.mn(0).stats().writes, 1u);
    EXPECT_GE(cluster.mn(1).stats().writes, 1u);
    EXPECT_EQ(region.failovers(), 0u);
}

TEST(Replication, FailoverServesFromBackup)
{
    Cluster cluster(ModelConfig::prototype(), 1, 2);
    ClioClient &client = cluster.createClient(0);
    ReplicatedRegion region(client, 4 * MiB, cluster.mn(0).nodeId(),
                            cluster.mn(1).nodeId());
    ASSERT_TRUE(region.ok());
    std::uint64_t v = 0xD00D;
    ASSERT_EQ(region.write(0, &v, 8), Status::kOk);

    // "Crash" the primary: wipe this process' state there, so reads
    // against it fail (the failure mode a real MN crash+restart has).
    cluster.mn(0).destroyProcess(client.pid());
    std::uint64_t out = 0;
    ASSERT_EQ(region.read(0, &out, 8), Status::kOk);
    EXPECT_EQ(out, 0xD00Du);
    EXPECT_EQ(region.failovers(), 1u);
    EXPECT_FALSE(region.primaryAlive());

    // Writes continue in degraded mode against the backup.
    std::uint64_t v2 = 0xD11D;
    ASSERT_EQ(region.write(8, &v2, 8), Status::kOk);
    ASSERT_EQ(region.read(8, &out, 8), Status::kOk);
    EXPECT_EQ(out, 0xD11Du);
}

TEST(Replication, ReplicasOnDistinctMnsByConstruction)
{
    Cluster cluster(ModelConfig::prototype(), 1, 3);
    ClioClient &client = cluster.createClient(0);
    ReplicatedRegion region(client, 4 * MiB, cluster.mn(1).nodeId(),
                            cluster.mn(2).nodeId());
    ASSERT_TRUE(region.ok());
    std::uint64_t v = 5;
    region.write(0, &v, 8);
    EXPECT_EQ(cluster.mn(0).stats().writes, 0u); // untouched MN
    region.destroy();
    // After destroy, reads fail.
    std::uint64_t out = 0;
    EXPECT_NE(region.read(0, &out, 8), Status::kOk);
}

TEST(Replication, SurvivesLossyNetwork)
{
    auto cfg = ModelConfig::prototype();
    cfg.net.loss_rate = 0.08;
    cfg.clib.max_retries = 10;
    Cluster cluster(cfg, 1, 2);
    ClioClient &client = cluster.createClient(0);
    ReplicatedRegion region(client, 4 * MiB, cluster.mn(0).nodeId(),
                            cluster.mn(1).nodeId());
    ASSERT_TRUE(region.ok());
    for (int i = 0; i < 50; i++) {
        std::uint64_t v = 1000 + i;
        ASSERT_EQ(region.write(static_cast<std::uint64_t>(i) * 8, &v, 8),
                  Status::kOk);
    }
    for (int i = 0; i < 50; i++) {
        std::uint64_t out = 0;
        ASSERT_EQ(region.read(static_cast<std::uint64_t>(i) * 8, &out, 8),
                  Status::kOk);
        EXPECT_EQ(out, 1000u + static_cast<unsigned>(i));
    }
}

TEST(Replication, FailoverUnderInflightBatchedWrites)
{
    // The primary dies WHILE a write-all batch is in flight: the crash
    // event is scheduled a few microseconds out and fires inside one
    // of the synchronous submitAndWait pumps.
    Cluster cluster(ModelConfig::prototype(), 1, 2);
    ClioClient &client = cluster.createClient(0);
    ReplicatedRegion region(client, 4 * MiB, cluster.mn(0).nodeId(),
                            cluster.mn(1).nodeId());
    ASSERT_TRUE(region.ok());

    cluster.eventQueue().scheduleAfter(5 * kMicrosecond,
                                       [&] { cluster.crashMn(0); });
    for (std::uint64_t i = 0; i < 20; i++) {
        std::uint64_t v = 0x5000 + i;
        // Every write still acks: the batch degrades to the backup
        // when the primary leg exhausts its retries.
        ASSERT_EQ(region.write(i * 8, &v, 8), Status::kOk) << i;
    }
    EXPECT_FALSE(region.primaryAlive());
    EXPECT_TRUE(region.backupAlive());
    EXPECT_GE(cluster.cn(0).stats().timeouts, 1u);

    // All twenty writes are readable (served by the backup).
    for (std::uint64_t i = 0; i < 20; i++) {
        std::uint64_t out = 0;
        ASSERT_EQ(region.read(i * 8, &out, 8), Status::kOk) << i;
        EXPECT_EQ(out, 0x5000 + i);
    }
}

TEST(Replication, DoubleFailureFailsFastWithoutHanging)
{
    Cluster cluster(ModelConfig::prototype(), 1, 2);
    ClioClient &client = cluster.createClient(0);
    ReplicatedRegion region(client, 4 * MiB, cluster.mn(0).nodeId(),
                            cluster.mn(1).nodeId());
    ASSERT_TRUE(region.ok());
    std::uint64_t v = 1;
    ASSERT_EQ(region.write(0, &v, 8), Status::kOk);

    cluster.crashMn(0);
    cluster.crashMn(1);

    // First op after the double failure burns real retries on both
    // replicas, then gives up — bounded sim time, never a hang.
    const Tick before = cluster.eventQueue().now();
    EXPECT_EQ(region.write(0, &v, 8), Status::kRetryExceeded);
    EXPECT_FALSE(region.primaryAlive());
    EXPECT_FALSE(region.backupAlive());
    std::uint64_t out = 0;
    EXPECT_EQ(region.read(0, &out, 8), Status::kRetryExceeded);
    EXPECT_LT(cluster.eventQueue().now() - before, kSecond);

    // Once both replicas are marked dead, further ops fail instantly
    // (no packets, no simulated time).
    const Tick t = cluster.eventQueue().now();
    EXPECT_EQ(region.write(0, &v, 8), Status::kRetryExceeded);
    EXPECT_EQ(region.read(0, &out, 8), Status::kRetryExceeded);
    EXPECT_EQ(cluster.eventQueue().now(), t);

    // With no surviving copy there is nothing to heal from.
    cluster.restartMn(0);
    EXPECT_EQ(region.heal(cluster.mn(0).nodeId()),
              Status::kRetryExceeded);
}

TEST(Replication, ReReplicationOntoThirdMnAfterCrash)
{
    // Heal onto a DIFFERENT MN than the one that died: the replacement
    // replica may land anywhere with capacity.
    Cluster cluster(ModelConfig::prototype(), 1, 3);
    ClioClient &client = cluster.createClient(0);
    ReplicatedRegion region(client, 1 * MiB, cluster.mn(0).nodeId(),
                            cluster.mn(1).nodeId());
    ASSERT_TRUE(region.ok());

    // Scatter data across the region so the chunked (256 KiB) resync
    // stream has to cover every chunk.
    for (std::uint64_t off = 0; off < 1 * MiB; off += 128 * KiB) {
        std::uint64_t v = 0xBEEF0000 + off;
        ASSERT_EQ(region.write(off, &v, 8), Status::kOk);
    }

    cluster.crashMn(0);
    std::uint64_t out = 0;
    ASSERT_EQ(region.read(0, &out, 8), Status::kOk); // failover
    ASSERT_FALSE(region.primaryAlive());

    ASSERT_EQ(region.heal(cluster.mn(2).nodeId()), Status::kOk);
    EXPECT_TRUE(region.primaryAlive());
    EXPECT_EQ(region.resyncs(), 1u);
    EXPECT_GE(cluster.mn(2).stats().writes, 1u);

    // Kill the surviving ORIGINAL replica: everything must now come
    // from the re-replicated copy on MN 2.
    cluster.crashMn(1);
    for (std::uint64_t off = 0; off < 1 * MiB; off += 128 * KiB) {
        ASSERT_EQ(region.read(off, &out, 8), Status::kOk) << off;
        EXPECT_EQ(out, 0xBEEF0000 + off);
    }
    EXPECT_TRUE(region.primaryAlive());
    EXPECT_TRUE(region.backupAlive()); // backup untouched since heal
}

TEST(Replication, HealAbortsWhenSurvivorDiesMidCopy)
{
    // Regression: heal() used to return the raw read status when the
    // SOURCE of the copy died mid-stream, leaving the survivor marked
    // alive and the half-copied replacement in limbo. It must abort
    // cleanly: survivor marked dead, kTimeout surfaced, replacement
    // never promoted.
    Cluster cluster(ModelConfig::prototype(), 1, 3);
    ClioClient &client = cluster.createClient(0);
    ReplicatedRegion region(client, 4 * MiB, cluster.mn(0).nodeId(),
                            cluster.mn(1).nodeId());
    ASSERT_TRUE(region.ok());
    for (std::uint64_t off = 0; off < 4 * MiB; off += 512 * KiB) {
        std::uint64_t v = 0xCAFE0000 + off;
        ASSERT_EQ(region.write(off, &v, 8), Status::kOk);
    }

    cluster.crashMn(0); // primary dies; backup (MN 1) is the survivor
    std::uint64_t out = 0;
    ASSERT_EQ(region.read(0, &out, 8), Status::kOk);
    ASSERT_FALSE(region.primaryAlive());

    // Kill the survivor while heal() is streaming chunks: 1 ms lands
    // well past the replacement alloc but mid-copy of a 4 MiB region.
    cluster.eventQueue().scheduleAfter(kMillisecond,
                                       [&] { cluster.crashMn(1); });
    EXPECT_EQ(region.heal(cluster.mn(2).nodeId()), Status::kTimeout);
    EXPECT_TRUE(region.bothDead());
    EXPECT_EQ(region.resyncs(), 0u); // the half-copy never counts

    // The abandoned replacement was never marked healthy: every path
    // fails fast instead of serving half-copied bytes.
    EXPECT_NE(region.read(0, &out, 8), Status::kOk);
    std::uint64_t v = 1;
    EXPECT_NE(region.write(0, &v, 8), Status::kOk);
}

TEST(Replication, ResyncChunkSizeIsConfigurable)
{
    // Satellite: the 256 KiB copy chunk is a CLibConfig knob. A tiny
    // chunk turns a 1 MiB heal into many round trips; a huge chunk
    // into very few. Both still copy every byte.
    for (const std::uint64_t chunk : {64 * KiB, 1 * MiB}) {
        auto cfg = ModelConfig::prototype();
        cfg.clib.resync_chunk_bytes = chunk;
        Cluster cluster(cfg, 1, 3);
        ClioClient &client = cluster.createClient(0);
        ReplicatedRegion region(client, 1 * MiB, cluster.mn(0).nodeId(),
                                cluster.mn(1).nodeId());
        ASSERT_TRUE(region.ok());
        for (std::uint64_t off = 0; off < 1 * MiB; off += 128 * KiB) {
            std::uint64_t v = 0xF00D0000 + off;
            ASSERT_EQ(region.write(off, &v, 8), Status::kOk);
        }
        cluster.crashMn(1);
        std::uint64_t v = 0;
        ASSERT_EQ(region.write(0, &v, 8), Status::kOk); // mark it dead
        const std::uint64_t reads_before = cluster.mn(0).stats().reads;
        ASSERT_EQ(region.heal(cluster.mn(2).nodeId()), Status::kOk);
        const std::uint64_t copy_reads =
            cluster.mn(0).stats().reads - reads_before;
        // One source read per chunk (the MN splits none of them).
        EXPECT_EQ(copy_reads, (1 * MiB + chunk - 1) / chunk);
        for (std::uint64_t off = 128 * KiB; off < 1 * MiB;
             off += 128 * KiB) {
            std::uint64_t got = 0;
            cluster.crashMn(0); // force reads onto the healed copy
            ASSERT_EQ(region.read(off, &got, 8), Status::kOk) << off;
            EXPECT_EQ(got, 0xF00D0000 + off);
        }
    }
}

TEST(Replication, WriteAllQuorumEdgeCases)
{
    auto cfg = ModelConfig::prototype();
    Cluster cluster(cfg, 1, 3);
    ClioClient &client = cluster.createClient(0);

    // Construction against a dead MN yields a half-born region that
    // reports !ok() instead of pretending to be replicated.
    cluster.crashMn(2);
    ReplicatedRegion broken(client, 1 * MiB, cluster.mn(0).nodeId(),
                            cluster.mn(2).nodeId());
    EXPECT_FALSE(broken.ok());
    cluster.restartMn(2);

    ReplicatedRegion region(client, 1 * MiB, cluster.mn(0).nodeId(),
                            cluster.mn(1).nodeId());
    ASSERT_TRUE(region.ok());

    // Degraded-mode write: one replica dead → kOk on a single ack,
    // and the dead replica is marked so later writes skip it.
    std::uint64_t v = 7;
    cluster.crashMn(1);
    EXPECT_EQ(region.write(0, &v, 8), Status::kOk);
    EXPECT_FALSE(region.backupAlive());
    const std::uint64_t writes_before = cluster.cn(0).stats().timeouts;
    v = 8;
    EXPECT_EQ(region.write(0, &v, 8), Status::kOk);
    // The second degraded write never retried the dead backup.
    EXPECT_EQ(cluster.cn(0).stats().timeouts, writes_before);

    // Read-one still answers from the surviving primary, without
    // bumping the failover counter.
    std::uint64_t out = 0;
    EXPECT_EQ(region.read(0, &out, 8), Status::kOk);
    EXPECT_EQ(out, 8u);
    EXPECT_EQ(region.failovers(), 0u);
}

} // namespace
} // namespace clio
